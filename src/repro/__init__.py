"""repro — Maximal Clique Enumeration with Hybrid Branching & Early Termination.

A from-scratch Python reproduction of the ICDE 2025 paper by Wang, Yu and
Long: the HBBMC hybrid branch-and-bound framework (edge-oriented branching
with truss ordering at the initial branch, pivot-based vertex branching
below), the early-termination technique for t-plex branches, graph
reduction, the full baseline family (BK, BK_Pivot, BK_Ref, BK_Degen,
BK_Degree, BK_Rcd, BK_Fac, their graph-reduced variants, reverse search),
and a benchmark harness regenerating every table and figure of the paper's
evaluation.

Quick start::

    from repro import maximal_cliques
    from repro.graph.generators import erdos_renyi_gnm

    g = erdos_renyi_gnm(200, 1200, seed=7)
    for clique in maximal_cliques(g):
        print(clique)
"""

from repro.api import (
    ALGORITHMS,
    DEFAULT_ALGORITHM,
    AlgorithmSpec,
    count_maximal_cliques,
    enumerate_to_sink,
    get_algorithm,
    maximal_cliques,
    run_with_report,
)
from repro.core.counters import Counters, RunReport
from repro.core.result import CliqueCollector, CliqueCounter
from repro.exceptions import (
    GraphFormatError,
    InvalidParameterError,
    InvalidVertexError,
    NotAPlexError,
    ReproError,
    UnknownAlgorithmError,
)
from repro.graph.adjacency import Graph
from repro.graph.metrics import GraphStats, graph_stats
from repro.verify import (
    assert_valid_enumeration,
    brute_force_maximal_cliques,
    is_maximal_clique,
    verify_enumeration,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "DEFAULT_ALGORITHM",
    "AlgorithmSpec",
    "CliqueCollector",
    "CliqueCounter",
    "Counters",
    "Graph",
    "GraphFormatError",
    "GraphStats",
    "InvalidParameterError",
    "InvalidVertexError",
    "NotAPlexError",
    "ReproError",
    "RunReport",
    "UnknownAlgorithmError",
    "assert_valid_enumeration",
    "brute_force_maximal_cliques",
    "count_maximal_cliques",
    "enumerate_to_sink",
    "get_algorithm",
    "graph_stats",
    "is_maximal_clique",
    "maximal_cliques",
    "run_with_report",
    "verify_enumeration",
]
