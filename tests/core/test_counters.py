"""Unit tests for counters and run reports, plus the set/bitset/words
counter-parity regression pins for the early-termination path."""

import pytest

from repro.api import enumerate_to_sink
from repro.core.counters import Counters, RunReport
from repro.core.result import CliqueCounter
from repro.graph.generators import erdos_renyi_gnm, erdos_renyi_gnp, plex_caveman


class TestCounters:
    def test_defaults_zero(self):
        c = Counters()
        assert c.total_calls == 0
        assert c.et_ratio == 0.0

    def test_total_calls(self):
        c = Counters(vertex_calls=3, edge_calls=4)
        assert c.total_calls == 7

    def test_et_ratio(self):
        c = Counters(plex_branches=10, plex_terminable=4)
        assert c.et_ratio == 0.4

    def test_as_dict_round_trip(self):
        c = Counters(vertex_calls=5, emitted=2)
        d = c.as_dict()
        assert d["vertex_calls"] == 5
        assert d["emitted"] == 2
        assert set(d) >= {"edge_calls", "et_hits", "reduction_removed"}

    def test_merge(self):
        a = Counters(vertex_calls=1, et_hits=2)
        b = Counters(vertex_calls=10, edge_calls=3)
        a.merge(b)
        assert a.vertex_calls == 11
        assert a.edge_calls == 3
        assert a.et_hits == 2


def _run_counters(g, algorithm, backend, **options):
    counter = CliqueCounter()
    counters = enumerate_to_sink(g, counter, algorithm=algorithm,
                                 backend=backend, **options)
    return counters.as_dict()


#: the counters a silent ET-path divergence would move first.
ET_KEYS = ("plex_branches", "plex_terminable", "et_hits", "et_cliques",
           "emitted")

DENSE_SEED_GRAPHS = [
    ("gnm-50-650", erdos_renyi_gnm(50, 650, seed=42)),
    ("gnp-40-06", erdos_renyi_gnp(40, 0.6, seed=13)),
    ("plex-caveman", plex_caveman(3, 12, 3, seed=1)),
]


class TestBackendCounterParity:
    """ET counters pinned between backends on fixed dense seeds.

    The edge engine branches identically under both representations, so
    its counters must agree *exactly* — a silent divergence anywhere in
    the bit-native ET path (plex check, decomposition, clique assembly)
    fails here loudly.  The tomita vertex phases may legitimately pick
    different equal-degree pivots between the set and mask backends
    (documented in :mod:`repro.core.bit_phases`), so for them the
    per-configuration counter values are pinned literally instead.  The
    words backend replays the bitset decision sequence branch for branch,
    so its pinned rows are the bitset literals — verbatim.
    """

    @pytest.mark.parametrize("backend", ["bitset", "words"])
    @pytest.mark.parametrize("bit_order", ["input", "degeneracy"])
    @pytest.mark.parametrize(
        "graph", [g for _, g in DENSE_SEED_GRAPHS],
        ids=[name for name, _ in DENSE_SEED_GRAPHS],
    )
    def test_edge_engine_exact_parity(self, graph, bit_order, backend):
        set_counters = _run_counters(graph, "ebbmc++", "set")
        mask_counters = _run_counters(graph, "ebbmc++", backend,
                                      bit_order=bit_order)
        assert mask_counters == set_counters
        assert set_counters["et_hits"] > 0  # the pin actually covers ET

    #: regenerate with scripts in this file's history if branching rules
    #: change intentionally; any *unintentional* drift must fail.
    PINNED = {
        ("hbbmc++", "set", None): {
            "plex_branches": 1711, "plex_terminable": 446, "et_hits": 446,
            "et_cliques": 811, "emitted": 1150,
        },
        ("hbbmc++", "bitset", "input"): {
            "plex_branches": 1724, "plex_terminable": 450, "et_hits": 450,
            "et_cliques": 817, "emitted": 1150,
        },
        ("hbbmc++", "bitset", "degeneracy"): {
            "plex_branches": 1734, "plex_terminable": 451, "et_hits": 451,
            "et_cliques": 810, "emitted": 1150,
        },
        ("vbbmc-dgn", "set", None): {
            "plex_branches": 872, "plex_terminable": 473, "et_hits": 473,
            "et_cliques": 827, "emitted": 1150,
        },
        ("vbbmc-dgn", "bitset", "input"): {
            "plex_branches": 870, "plex_terminable": 489, "et_hits": 489,
            "et_cliques": 848, "emitted": 1150,
        },
        ("vbbmc-dgn", "bitset", "degeneracy"): {
            "plex_branches": 880, "plex_terminable": 480, "et_hits": 480,
            "et_cliques": 827, "emitted": 1150,
        },
        # Words rows: the bitset literals, verbatim — branch-for-branch
        # parity means any divergence is a words-backend bug, not a tie.
        ("hbbmc++", "words", "input"): {
            "plex_branches": 1724, "plex_terminable": 450, "et_hits": 450,
            "et_cliques": 817, "emitted": 1150,
        },
        ("hbbmc++", "words", "degeneracy"): {
            "plex_branches": 1734, "plex_terminable": 451, "et_hits": 451,
            "et_cliques": 810, "emitted": 1150,
        },
        ("vbbmc-dgn", "words", "input"): {
            "plex_branches": 870, "plex_terminable": 489, "et_hits": 489,
            "et_cliques": 848, "emitted": 1150,
        },
        ("vbbmc-dgn", "words", "degeneracy"): {
            "plex_branches": 880, "plex_terminable": 480, "et_hits": 480,
            "et_cliques": 827, "emitted": 1150,
        },
    }

    @pytest.mark.parametrize("key", sorted(PINNED, key=str))
    def test_vertex_engine_pinned_counters(self, key):
        algorithm, backend, bit_order = key
        g = erdos_renyi_gnm(50, 650, seed=42)
        options = {"bit_order": bit_order} if bit_order else {}
        counters = _run_counters(g, algorithm, backend, **options)
        assert {k: counters[k] for k in ET_KEYS} == self.PINNED[key]

    @pytest.mark.parametrize(
        "graph", [g for _, g in DENSE_SEED_GRAPHS],
        ids=[name for name, _ in DENSE_SEED_GRAPHS],
    )
    @pytest.mark.parametrize("backend", ["bitset", "words"])
    @pytest.mark.parametrize("algorithm", ["hbbmc++", "vbbmc-dgn"])
    def test_assembled_clique_counts_match(self, algorithm, backend, graph):
        """Whatever the pivot ties do, the assembled output cannot move."""
        set_counters = _run_counters(graph, algorithm, "set")
        for bit_order in ("input", "degeneracy"):
            mask_counters = _run_counters(graph, algorithm, backend,
                                          bit_order=bit_order)
            assert mask_counters["emitted"] == set_counters["emitted"]
            assert mask_counters["et_hits"] == mask_counters["plex_terminable"]
            assert mask_counters["et_cliques"] >= mask_counters["et_hits"]


class TestRunReport:
    def test_summary_mentions_key_figures(self):
        report = RunReport(
            algorithm="hbbmc++", clique_count=42, seconds=1.5,
            counters=Counters(vertex_calls=100),
        )
        text = report.summary()
        assert "hbbmc++" in text
        assert "42" in text
        assert "100" in text
