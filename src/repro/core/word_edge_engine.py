"""Word-backend edge-oriented branching (``backend="words"``).

Edge-level state is small and irregular — rank dictionaries, per-branch
candidate views, triangle bookkeeping — and the bit engine already runs it
on ``int`` masks with no per-member set churn.  What the word backend
changes is where the *time* goes: the vertex phases below the edge levels.
So this module runs the literal bit edge engine
(:mod:`repro.core.bit_edge_engine`) with the word bridge installed as its
vertex phase: every same-view branch above the dispatch threshold is lifted
into the vectorised word kernels, everything else (dual-view candidate
views, small branches) stays on the bit twins.  Counters, emission order
and clique streams are therefore *identical* to the bitset backend — the
two differ only in how fast the big branches resolve.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.bit_edge_engine import (
    bit_edge_phase,
    bit_run_edge_root,
    bit_run_edge_root_with_x,
)
from repro.core.phases import EngineContext
from repro.core.word_phases import make_word_bridge
from repro.graph.adjacency import Graph
from repro.graph.wordadj import WordGraph, WordWorkspace
from repro.graph.truss import EdgeOrdering

BitAdjacency = Mapping[int, int] | Sequence[int]


def word_edge_phase(
    S: list[int],
    C: int,
    X: int,
    cand: BitAdjacency,
    adj: Sequence[int],
    rank: dict[int, int],
    n: int,
    threshold: int,
    depth: int | None,
    ctx: EngineContext,
    wg: WordGraph | None = None,
    ws: WordWorkspace | None = None,
) -> None:
    """One edge-oriented branch under the words backend.

    ``(C, X)``, the views and the rank table keep the bit engine's ``int``
    conventions; ``ctx`` is the words context.  When ``wg`` is omitted a
    word view is packed from ``adj`` (identity order) — callers on the hot
    path pass their cached one.
    """
    if wg is None:
        wg = WordGraph.from_masks(adj, n)
    bit_edge_phase(S, C, X, cand, adj, rank, n, threshold, depth,
                   make_word_bridge(ctx, wg, ws))


def word_run_edge_root(
    g: Graph,
    wg: WordGraph,
    ordering: EdgeOrdering,
    depth: int | None,
    ctx: EngineContext,
    core=None,
) -> None:
    """The initial branch (S = {}, C = V) under the words backend.

    Word twin of :func:`repro.core.edge_engine.run_edge_root`: the bit
    engine's triangle-pass root runs verbatim on ``wg.bit``, with vertex
    handoffs crossing into word space through the bridge.
    """
    bit_run_edge_root(g, wg.bit, ordering, depth,
                      make_word_bridge(ctx, wg), core=core)


def word_run_edge_root_with_x(
    g: Graph,
    wg: WordGraph,
    C: int,
    X: int,
    ordering: EdgeOrdering,
    depth: int | None,
    ctx: EngineContext,
) -> None:
    """The initial branch of a subproblem seeded with exclusion state.

    ``C``/``X`` are masks in ``wg``'s bit space, exactly as the bitset twin
    takes them; see :func:`repro.core.bit_edge_engine.bit_run_edge_root_with_x`.
    """
    bit_run_edge_root_with_x(g, wg.bit, C, X, ordering, depth,
                             make_word_bridge(ctx, wg))
