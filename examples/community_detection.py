"""Clique-percolation community detection on a synthetic social network.

The paper's first motivating application (Section I): communities can be
defined as connected unions of adjacent k-cliques ("clique percolation",
Palla et al.).  Maximal cliques are the natural starting point — two
communities overlap where maximal cliques share k-1 vertices.

This example builds a planted-community graph, enumerates maximal cliques
with HBBMC++, runs clique percolation on top, and measures how well the
recovered communities match the planted ones.

Run:  python examples/community_detection.py
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro import maximal_cliques
from repro.graph.adjacency import Graph


def planted_partition(
    num_communities: int,
    size: int,
    p_in: float,
    inter_edges: int,
    seed: int,
) -> tuple[Graph, list[set[int]]]:
    """Communities with dense interiors plus sparse random bridges."""
    rng = random.Random(seed)
    n = num_communities * size
    g = Graph(n)
    truth = []
    for c in range(num_communities):
        members = list(range(c * size, (c + 1) * size))
        truth.append(set(members))
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if rng.random() < p_in:
                    g.add_edge(u, v)
    added = 0
    while added < inter_edges:
        u, v = rng.randrange(n), rng.randrange(n)
        if u // size != v // size and u != v and g.add_edge(u, v):
            added += 1
    return g, truth


def clique_percolation(cliques: list[tuple[int, ...]], k: int) -> list[set[int]]:
    """Union-find over k-clique adjacency (share >= k-1 vertices)."""
    kept = [set(c) for c in cliques if len(c) >= k]
    parent = list(range(len(kept)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    # Index cliques by their (k-1)-subsets would be exponential; for this
    # demo the quadratic scan over kept cliques is fine.
    for i in range(len(kept)):
        for j in range(i + 1, len(kept)):
            if len(kept[i] & kept[j]) >= k - 1:
                union(i, j)

    groups: dict[int, set[int]] = defaultdict(set)
    for i, clique in enumerate(kept):
        groups[find(i)] |= clique
    return sorted(groups.values(), key=len, reverse=True)


def jaccard(a: set[int], b: set[int]) -> float:
    return len(a & b) / len(a | b) if a | b else 1.0


def main() -> None:
    g, truth = planted_partition(
        num_communities=6, size=18, p_in=0.55, inter_edges=40, seed=11,
    )
    print(f"planted-community graph: n={g.n}, m={g.m}, "
          f"{len(truth)} communities of 18")

    cliques = maximal_cliques(g, algorithm="hbbmc++")
    print(f"maximal cliques: {len(cliques)} "
          f"(size histogram: {_histogram(cliques)})")

    for k in (4, 5, 6):
        communities = clique_percolation(cliques, k)
        matched = [
            max(jaccard(t, c) for c in communities) if communities else 0.0
            for t in truth
        ]
        recovered = sum(1 for score in matched if score >= 0.5)
        print(f"k={k}: {len(communities):3d} communities, "
              f"{recovered}/{len(truth)} planted communities recovered "
              f"(mean best-Jaccard {sum(matched) / len(matched):.2f})")


def _histogram(cliques: list[tuple[int, ...]]) -> dict[int, int]:
    hist: dict[int, int] = defaultdict(int)
    for c in cliques:
        hist[len(c)] += 1
    return dict(sorted(hist.items()))


if __name__ == "__main__":
    main()
