"""Unit tests for graph reduction (GR) and its suppression bookkeeping."""

import pytest

from repro.core.reduction import reduce_graph
from repro.exceptions import InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.builders import (
    complete_graph,
    cycle_graph,
    disjoint_union,
    path_graph,
    star_graph,
)
from repro.graph.generators import erdos_renyi_gnm
from repro.verify import brute_force_maximal_cliques


def _canon(cliques):
    return sorted(tuple(sorted(c)) for c in cliques)


def _full_enumeration_via_reduction(g):
    """Reduction output + brute force on the reduced graph, filtered."""
    result = reduce_graph(g)
    rest = [
        c for c in brute_force_maximal_cliques(result.graph)
        if frozenset(c) not in result.suppressed
    ]
    return _canon(list(result.emitted) + rest)


class TestRules:
    def test_isolated_vertex(self):
        g = Graph(3)
        g.add_edge(0, 1)
        result = reduce_graph(g)
        assert (2,) in [tuple(sorted(c)) for c in result.emitted]

    def test_pendant_vertex(self):
        g = star_graph(1)  # single edge
        result = reduce_graph(g)
        assert _canon(result.emitted) == [(0, 1)]
        assert result.graph.m == 0

    def test_triangle_fully_reduced(self):
        g = complete_graph(3)
        result = reduce_graph(g)
        assert _canon(result.emitted) == [(0, 1, 2)]
        assert result.graph.m == 0

    def test_path_degree2_rule(self):
        g = path_graph(3)  # 0-1-2, vertex 1 has non-adjacent neighbours
        assert _full_enumeration_via_reduction(g) == [(0, 1), (1, 2)]

    def test_long_path(self):
        g = path_graph(8)
        expected = [(i, i + 1) for i in range(7)]
        assert _full_enumeration_via_reduction(g) == expected

    def test_cycle_reduces_completely(self):
        g = cycle_graph(7)
        expected = _canon(brute_force_maximal_cliques(g))
        assert _full_enumeration_via_reduction(g) == expected

    def test_k4_untouched_by_default(self):
        g = complete_graph(4)
        result = reduce_graph(g)  # min degree 3 > 2
        assert result.graph.m == 6
        assert result.emitted == []

    def test_k4_reduced_with_higher_cap(self):
        g = complete_graph(4)
        result = reduce_graph(g, max_degree=3)
        assert _canon(result.emitted) == [(0, 1, 2, 3)]

    def test_bad_max_degree(self):
        with pytest.raises(InvalidParameterError):
            reduce_graph(Graph(2), max_degree=-1)


class TestSuppression:
    def test_triangle_chain_no_subset_emission(self):
        """Peeling a triangle must not later emit its subsets."""
        result = reduce_graph(complete_graph(3))
        assert _canon(result.emitted) == [(0, 1, 2)]
        # the suppressed sets include the edge and singleton leftovers
        assert frozenset({1, 2}) in result.suppressed

    def test_k2_component(self):
        g = disjoint_union(complete_graph(2), complete_graph(3))
        assert _full_enumeration_via_reduction(g) == [(0, 1), (2, 3, 4)]

    def test_removed_vertices_singletons_suppressed(self):
        g = path_graph(4)
        result = reduce_graph(g)
        for v in result.removed:
            assert frozenset({v}) in result.suppressed


class TestEquivalence:
    """The reduction invariant: emitted + (MC(reduced) - suppressed) = MC(G)."""

    @pytest.mark.parametrize("seed", range(15))
    def test_random_graphs(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randrange(2, 16)
        m = rng.randrange(0, n * (n - 1) // 2 + 1)
        g = erdos_renyi_gnm(n, m, seed=100 + seed)
        assert _full_enumeration_via_reduction(g) == _canon(
            brute_force_maximal_cliques(g)
        )

    @pytest.mark.parametrize("max_degree", [0, 1, 2, 3, 4])
    def test_any_degree_cap_is_sound(self, max_degree):
        g = erdos_renyi_gnm(14, 40, seed=9)
        result = reduce_graph(g, max_degree=max_degree)
        rest = [
            c for c in brute_force_maximal_cliques(result.graph)
            if frozenset(c) not in result.suppressed
        ]
        assert _canon(list(result.emitted) + rest) == _canon(
            brute_force_maximal_cliques(g)
        )

    def test_tree_reduces_to_nothing(self):
        g = star_graph(6)
        result = reduce_graph(g)
        assert result.graph.m == 0
        assert _canon(result.emitted) == [(0, v) for v in range(1, 7)]
