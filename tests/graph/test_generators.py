"""Unit tests for the random/structured graph generators."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.graph.generators import (
    barabasi_albert,
    complete_multipartite,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    erdos_renyi_with_density,
    grid_2d,
    holme_kim,
    moon_moser,
    overlapping_communities,
    planted_cliques,
    random_2_plex,
    random_3_plex,
    relaxed_caveman,
    ring_of_cliques,
    web_graph,
)
from repro.graph.plex import is_t_plex
from repro.graph.triangles import triangle_count


class TestErdosRenyi:
    def test_gnm_exact_edge_count(self):
        g = erdos_renyi_gnm(30, 100, seed=1)
        assert g.n == 30
        assert g.m == 100

    def test_gnm_dense_regime(self):
        g = erdos_renyi_gnm(12, 60, seed=2)  # > 1/3 of max edges
        assert g.m == 60

    def test_gnm_reproducible(self):
        a = erdos_renyi_gnm(25, 80, seed=7)
        b = erdos_renyi_gnm(25, 80, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_gnm_bad_m(self):
        with pytest.raises(InvalidParameterError):
            erdos_renyi_gnm(4, 10, seed=0)

    def test_gnp_extremes(self):
        assert erdos_renyi_gnp(10, 0.0, seed=1).m == 0
        assert erdos_renyi_gnp(10, 1.0, seed=1).m == 45

    def test_gnp_probability_range(self):
        with pytest.raises(InvalidParameterError):
            erdos_renyi_gnp(5, 1.5, seed=0)

    def test_gnp_expected_density(self):
        g = erdos_renyi_gnp(200, 0.1, seed=3)
        expected = 0.1 * 199 * 200 / 2
        assert abs(g.m - expected) < 0.25 * expected

    def test_with_density(self):
        g = erdos_renyi_with_density(100, 5.0, seed=4)
        assert g.m == 500


class TestBarabasiAlbert:
    def test_size_and_connectivity(self):
        g = barabasi_albert(100, 3, seed=5)
        assert g.n == 100
        # Every late vertex attaches to exactly k distinct targets.
        assert g.m == 3 + 3 * (100 - 4)
        assert all(g.degree(v) >= 1 for v in g.vertices())

    def test_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            barabasi_albert(3, 3, seed=0)
        with pytest.raises(InvalidParameterError):
            barabasi_albert(10, 0, seed=0)

    def test_hub_formation(self):
        g = barabasi_albert(300, 2, seed=6)
        degrees = sorted(g.degrees(), reverse=True)
        # Preferential attachment should produce a pronounced hub.
        assert degrees[0] >= 4 * (2 * g.m / g.n)

    def test_holme_kim_more_triangles_than_ba(self):
        ba = barabasi_albert(300, 4, seed=7)
        hk = holme_kim(300, 4, 0.8, seed=7)
        assert triangle_count(hk) > triangle_count(ba)

    def test_holme_kim_probability_range(self):
        with pytest.raises(InvalidParameterError):
            holme_kim(20, 2, 1.5, seed=0)


class TestBaHeavyHub:
    def test_deterministic_and_sized(self):
        from repro.graph.generators import ba_heavy_hub

        a = ba_heavy_hub(200, 3, hub_parts=4, hub_part_size=3, seed=7)
        b = ba_heavy_hub(200, 3, hub_parts=4, hub_part_size=3, seed=7)
        assert a.n == 200
        assert sorted(a.edges()) == sorted(b.edges())

    def test_hub_owns_the_transversal_cliques(self):
        # The point of the family: the hub peels before its pocket, so
        # one degeneracy subproblem owns all part_size**parts transversal
        # cliques.  Assert the clique population exists at the expected
        # scale (pocket transversals dominate the total).
        from repro.api import count_maximal_cliques
        from repro.graph.generators import ba_heavy_hub

        g = ba_heavy_hub(200, 3, hub_parts=4, hub_part_size=3, seed=7)
        assert count_maximal_cliques(g) >= 3 ** 4

    def test_bad_parameters(self):
        from repro.graph.generators import ba_heavy_hub

        with pytest.raises(InvalidParameterError):
            ba_heavy_hub(200, 3, hub_parts=1)
        with pytest.raises(InvalidParameterError):
            ba_heavy_hub(200, 3, hub_part_size=1)
        with pytest.raises(InvalidParameterError):
            ba_heavy_hub(20, 3)  # planted structure does not fit


class TestStructured:
    def test_moon_moser_clique_count_structure(self):
        g = moon_moser(3)
        assert g.n == 9
        # complete 3-partite: each vertex adjacent to 6 others
        assert all(g.degree(v) == 6 for v in g.vertices())

    def test_moon_moser_bad(self):
        with pytest.raises(InvalidParameterError):
            moon_moser(0)

    def test_complete_multipartite(self):
        g = complete_multipartite([2, 3])
        assert g.n == 5
        assert g.m == 6

    def test_random_plexes(self):
        for seed in range(5):
            g2 = random_2_plex(8, seed=seed)
            assert is_t_plex(set(g2.vertices()), g2.adj, 2)
            g3 = random_3_plex(9, seed=seed)
            assert is_t_plex(set(g3.vertices()), g3.adj, 3)

    def test_ring_of_cliques(self):
        g = ring_of_cliques(4, 3)
        assert g.n == 12
        assert g.m == 4 * 3 + 4  # 4 triangles + 4 bridges

    def test_ring_of_cliques_bad(self):
        with pytest.raises(InvalidParameterError):
            ring_of_cliques(2, 3)

    def test_plex_caveman_structure(self):
        from repro.api import count_maximal_cliques
        from repro.graph.generators import plex_caveman

        num, size, pairs = 4, 8, 2
        g = plex_caveman(num, size, pairs, seed=5)
        assert g.n == num * size
        # Each community is a clique minus a perfect matching prefix.
        assert g.m == num * (size * (size - 1) // 2 - pairs) + num
        for c in range(num):
            members = set(range(c * size, (c + 1) * size))
            assert is_t_plex(members, g.adj, 2)
            assert not is_t_plex(members, g.adj, 1)
        # 2^pairs maximal cliques per community, plus one per bridge.
        assert count_maximal_cliques(g) == num * 2 ** pairs + num

    def test_plex_caveman_bad(self):
        from repro.graph.generators import plex_caveman

        with pytest.raises(InvalidParameterError):
            plex_caveman(2, 8, 2)
        with pytest.raises(InvalidParameterError):
            plex_caveman(4, 6, 4)  # 2 * pairs > clique_size

    def test_relaxed_caveman_size(self):
        g = relaxed_caveman(5, 4, 0.2, seed=8)
        assert g.n == 20

    def test_grid(self):
        g = grid_2d(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_diagonals(self):
        g = grid_2d(3, 3, diagonals=True)
        assert g.m == 12 + 8

    def test_planted_cliques_contains_cliques(self):
        g = planted_cliques(30, 3, 5, 20, seed=9)
        assert g.n == 30
        assert g.m >= 3  # at least some structure


class TestDomainGenerators:
    def test_web_graph_size(self):
        g = web_graph(200, 3, hub_fraction=0.05, clique_size=6,
                      num_cliques=5, seed=10)
        assert g.n == 200
        assert g.m > 0

    def test_overlapping_communities(self):
        g = overlapping_communities(150, 25, 6, 1.5, 0.9, 30, seed=11)
        assert g.n == 150
        assert triangle_count(g) > 0

    def test_overlapping_communities_bad(self):
        with pytest.raises(InvalidParameterError):
            overlapping_communities(10, 0, 5, 1.0, 0.5, 0, seed=0)
