"""Unit tests for the truss-based edge ordering."""

import pytest

from repro.graph.adjacency import Graph
from repro.graph.builders import complete_graph, cycle_graph, path_graph
from repro.graph.coreness import degeneracy
from repro.graph.generators import erdos_renyi_gnm, moon_moser
from repro.graph.truss import candidate_size_bound, truss_edge_ordering, truss_number


class TestOrderingBasics:
    def test_order_is_permutation_of_edges(self):
        g = erdos_renyi_gnm(20, 80, seed=0)
        ordering = truss_edge_ordering(g)
        assert sorted(ordering.order) == sorted(g.edges())
        assert len(ordering.rank) == g.m
        assert sorted(ordering.rank.values()) == list(range(g.m))

    def test_empty_graph(self):
        ordering = truss_edge_ordering(Graph(5))
        assert ordering.order == []
        assert ordering.tau == 0

    def test_triangle_free_tau_zero(self):
        assert truss_number(path_graph(10)) == 0
        assert truss_number(cycle_graph(9)) == 0

    def test_complete_graph_tau(self):
        # In K_n the first removed edge has n-2 common neighbours.
        assert truss_number(complete_graph(6)) == 4


class TestTauProperties:
    @pytest.mark.parametrize("seed", range(6))
    def test_tau_strictly_below_degeneracy_on_triangle_graphs(self, seed):
        """Paper Section III-B: tau < delta (when the graph has edges)."""
        g = erdos_renyi_gnm(40, 220, seed=seed)
        if g.m == 0:
            pytest.skip("no edges")
        assert truss_number(g) < max(degeneracy(g), 1) or truss_number(g) == 0

    def test_tau_equals_candidate_size_bound(self):
        """tau is exactly the max top-level instance size under the order."""
        for seed in range(4):
            g = erdos_renyi_gnm(25, 140, seed=seed)
            ordering = truss_edge_ordering(g)
            assert ordering.tau == candidate_size_bound(g, ordering.rank)

    def test_moon_moser(self):
        g = moon_moser(3)
        # Every edge of K_{3,3,3} has 4 common neighbours initially; the
        # peel does even better because supports drop as edges leave.
        ordering = truss_edge_ordering(g)
        assert ordering.tau == candidate_size_bound(g, ordering.rank)
        assert ordering.tau < degeneracy(g) == 6


class TestGreedyInvariant:
    def test_prefix_supports_bounded_by_tau(self):
        """When edge e is processed, its remaining support is <= tau."""
        g = erdos_renyi_gnm(20, 100, seed=3)
        ordering = truss_edge_ordering(g)
        rank = ordering.rank
        for (u, v), r in rank.items():
            remaining = 0
            for w in g.common_neighbors(u, v):
                ra = rank[(u, w) if u < w else (w, u)]
                rb = rank[(v, w) if v < w else (w, v)]
                if ra > r and rb > r:
                    remaining += 1
            assert remaining <= ordering.tau
