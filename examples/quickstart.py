"""Quickstart: enumerate maximal cliques with HBBMC++.

Builds a small social-style graph, enumerates its maximal cliques with the
paper's full algorithm, verifies the output, and prints the statistics that
decide whether HBBMC's complexity bound beats the classical one (Theorem 2).

Run:  python examples/quickstart.py
"""

from repro import graph_stats, maximal_cliques, run_with_report, verify_enumeration
from repro.graph.generators import social_graph


def main() -> None:
    # A 300-vertex power-law-cluster graph (friend-of-friend closure).
    g = social_graph(300, 6, triad_probability=0.6, seed=7)
    print(f"graph: n={g.n}, m={g.m}")

    # --- 1. one-call enumeration -------------------------------------
    cliques = maximal_cliques(g)  # default algorithm: hbbmc++
    print(f"maximal cliques: {len(cliques)}")
    largest = max(cliques, key=len)
    print(f"largest clique ({len(largest)} vertices): {largest}")

    # --- 2. validate the output --------------------------------------
    problems = verify_enumeration(g, cliques)
    print(f"verification: {'OK' if not problems else problems[:3]}")

    # --- 3. the paper's Table I statistics ---------------------------
    stats = graph_stats(g)
    print(f"degeneracy delta = {stats.degeneracy}, truss tau = {stats.tau}, "
          f"density rho = {stats.density:.1f}")
    print("Theorem 2 condition (HBBMC bound beats the state of the art): "
          f"{'satisfied' if stats.satisfies_condition else 'not satisfied'}")

    # --- 4. work counters --------------------------------------------
    report = run_with_report(g, algorithm="hbbmc++")
    c = report.counters
    print(f"run: {report.seconds * 1000:.1f} ms, "
          f"{c.total_calls} branching calls, "
          f"{c.et_hits} early terminations producing {c.et_cliques} cliques")


if __name__ == "__main__":
    main()
