"""Unit tests for the command-line interface."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.graph.builders import complete_graph
from repro.graph.io import write_edge_list


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    write_edge_list(complete_graph(4), path)
    return str(path)


class TestEnumerate:
    def test_enumerate_file(self, graph_file, capsys):
        assert main(["enumerate", graph_file]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 1  # K4: one clique

    def test_limit(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "--limit", "0"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == ""
        # All cliques are hidden, and the arithmetic says so exactly.
        assert "... (1 more)" in captured.err

    @pytest.mark.parametrize("bad", ["-1", "-5"])
    def test_negative_limit_exits_2(self, graph_file, bad, capsys):
        # Regression: cliques[:-k] silently dropped cliques from the end
        # and the "(N more)" arithmetic over-reported.
        assert main(["enumerate", graph_file, "--limit", bad]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--limit" in err
        assert len(err.strip().splitlines()) == 1

    def test_dataset_option(self, capsys):
        assert main(["count", "--dataset", "WE", "-a", "rdegen"]) == 0
        assert "cliques" in capsys.readouterr().out

    def test_missing_input_errors(self, capsys):
        # Exit code 2 + one-line message, like every other user error
        # (the old bare SystemExit exited 1 and bypassed the convention).
        assert main(["enumerate"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_graph_file_plus_dataset_exits_2(self, graph_file, capsys):
        # Regression: the file used to be silently ignored under --dataset.
        assert main(["count", graph_file, "--dataset", "WE"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--dataset" in err
        assert len(err.strip().splitlines()) == 1

    def test_format_plus_dataset_exits_2(self, capsys):
        # Regression: --format used to be silently ignored under --dataset.
        assert main(["count", "--dataset", "WE", "--format", "json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--format" in err
        assert len(err.strip().splitlines()) == 1


class TestCount:
    def test_single_algorithm(self, graph_file, capsys):
        assert main(["count", graph_file, "-a", "hbbmc++"]) == 0
        assert "hbbmc++" in capsys.readouterr().out


class TestBackendFlag:
    def test_enumerate_bitset_backend(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "--backend", "bitset"]) == 0
        out = capsys.readouterr().out
        assert out.strip() == "0 1 2 3"  # K4: the one maximal clique

    def test_count_backends_agree(self, graph_file, capsys):
        assert main(["count", graph_file, "--backend", "set"]) == 0
        set_out = capsys.readouterr().out
        assert main(["count", graph_file, "--backend", "bitset"]) == 0
        bit_out = capsys.readouterr().out
        assert set_out.split()[1] == bit_out.split()[1]  # same clique count

    def test_count_all_skips_unsupported_backend(self, graph_file, capsys):
        assert main(["count", graph_file, "--all", "--backend", "bitset"]) == 0
        out = capsys.readouterr().out
        assert "hbbmc++" in out
        assert "skipped" in out  # reverse-search has no bitset backend

    def test_enumerate_words_backend(self, graph_file, capsys):
        assert main(["enumerate", graph_file, "--backend", "words"]) == 0
        out = capsys.readouterr().out
        assert out.strip() == "0 1 2 3"  # K4: the one maximal clique


class TestBitOrderFlag:
    @pytest.mark.parametrize("backend", ["bitset", "words"])
    @pytest.mark.parametrize("bit_order", ["input", "degeneracy"])
    def test_enumerate_bit_orders_agree(self, graph_file, bit_order, backend,
                                        capsys):
        assert main(["enumerate", graph_file, "--backend", backend,
                     "--bit-order", bit_order]) == 0
        assert capsys.readouterr().out.strip() == "0 1 2 3"  # K4

    def test_bit_order_without_mask_backend_exits_2(self, graph_file, capsys):
        # --backend defaults to set; the error names *both* mask backends
        # so the fix is discoverable from the one-line message.
        assert main(["enumerate", graph_file,
                     "--bit-order", "degeneracy"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--bit-order" in err
        assert "bitset" in err and "words" in err
        assert len(err.strip().splitlines()) == 1

    def test_bit_order_misuse_not_swallowed_by_count_all(self, graph_file,
                                                         capsys):
        # --all's skip path is for per-algorithm incompatibilities, not
        # global flag misuse: this must exit 2, not print 23 "skipped"s.
        assert main(["count", graph_file, "--all",
                     "--bit-order", "degeneracy"]) == 2
        err = capsys.readouterr().err
        assert "--bit-order" in err
        assert len(err.strip().splitlines()) == 1

    def test_bit_order_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["enumerate", "--help"])
        assert "--bit-order" in capsys.readouterr().out


class TestJobsFlag:
    def test_enumerate_parallel_matches_serial(self, graph_file, capsys):
        assert main(["enumerate", graph_file]) == 0
        serial = capsys.readouterr().out
        assert main(["enumerate", graph_file, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_count_with_jobs_and_strategy(self, graph_file, capsys):
        assert main(["count", graph_file, "--jobs", "2",
                     "--chunk-strategy", "contiguous"]) == 0
        assert "1" in capsys.readouterr().out.split()

    def test_verify_with_jobs(self, graph_file, capsys):
        assert main(["verify", graph_file, "--jobs", "2"]) == 0
        assert "OK" in capsys.readouterr().out

    @pytest.mark.parametrize("bad", ["0", "-4", "two", "1.5"])
    def test_invalid_jobs_exits_2_with_one_line(self, graph_file, bad, capsys):
        assert main(["count", graph_file, "--jobs", bad]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--jobs" in err
        assert len(err.strip().splitlines()) == 1

    def test_chunk_strategy_without_jobs_exits_2(self, graph_file, capsys):
        assert main(["enumerate", graph_file,
                     "--chunk-strategy", "contiguous"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--jobs" in err
        assert len(err.strip().splitlines()) == 1

    @pytest.mark.parametrize("flag,value", [
        ("--cost-model", "uniform"),
        ("--chunks-per-worker", "4"),
    ])
    def test_parallel_only_flags_without_jobs_exit_2(
            self, graph_file, capsys, flag, value):
        assert main(["enumerate", graph_file, flag, value]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert flag in err and "--jobs" in err

    def test_cost_model_and_chunks_per_worker_with_jobs(
            self, graph_file, capsys):
        assert main(["enumerate", graph_file]) == 0
        serial = capsys.readouterr().out
        assert main(["enumerate", graph_file, "--jobs", "2",
                     "--cost-model", "uniform",
                     "--chunks-per-worker", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_jobs_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["enumerate", "--help"])
        out = capsys.readouterr().out
        assert "--jobs" in out
        assert "--chunk-strategy" in out


class TestErrorExits:
    """User errors must exit with code 2 and one line, not a traceback."""

    def test_unknown_algorithm_exits_2(self, graph_file, capsys):
        assert main(["count", graph_file, "-a", "definitely-not-real"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "definitely-not-real" in err
        assert len(err.strip().splitlines()) == 1

    def test_invalid_parameter_exits_2(self, graph_file, capsys):
        # reverse-search rejects the bitset backend with InvalidParameterError.
        assert main(["enumerate", graph_file, "-a", "reverse-search",
                     "--backend", "bitset"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1


class TestStats:
    def test_stats_output(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "degeneracy = 3" in out
        assert "Theorem 2" in out


class TestListing:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "OR" in out and "orkut" not in out  # codes + categories

    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "hbbmc++" in out
        assert "reverse-search" in out

    def test_algorithms_lists_every_registered_name(self, capsys):
        from repro.api import ALGORITHMS

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ALGORITHMS:
            assert name in out


class TestVerify:
    def test_verify_ok(self, graph_file, capsys):
        assert main(["verify", graph_file]) == 0
        assert "OK" in capsys.readouterr().out


class TestServe:
    """The serve subcommand: a real subprocess round trip over stdio."""

    def test_serve_round_trip(self, graph_file):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        requests = [
            {"op": "ping"},
            {"op": "register", "path": graph_file, "name": "k4"},
            {"op": "count", "graph": "k4"},
            {"op": "count", "graph": "k4", "backend": "bitset"},
            {"op": "enumerate", "graph": "k4"},
            {"op": "stats"},
            {"op": "shutdown"},
        ]
        payload = "".join(json.dumps(r) + "\n" for r in requests)
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "serve"],
            input=payload, capture_output=True, text=True, env=env,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        responses = [json.loads(line)
                     for line in completed.stdout.splitlines()]
        assert len(responses) == len(requests)
        assert all(r["ok"] for r in responses)
        assert responses[2]["count"] == 1 and not responses[2]["warm"]
        assert responses[3]["warm"]
        assert responses[4]["cliques"] == [[0, 1, 2, 3]]
        assert responses[5]["stats"]["decompose_calls"] == 1
        assert responses[6]["bye"]

    def test_serve_rejects_format_without_graph(self, capsys):
        # Same masked-intent class as count/enumerate: --format with no
        # --graph file to apply it to must not be silently ignored.
        assert main(["serve", "--dataset", "WE", "--format", "json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--format" in err
        assert len(err.strip().splitlines()) == 1

    def test_serve_rejects_bad_jobs(self, capsys):
        assert main(["serve", "--jobs", "zero"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--jobs" in err
        assert len(err.strip().splitlines()) == 1

    def test_serve_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        out = capsys.readouterr().out
        assert "--port" in out
        assert "--jobs" in out


class TestTraceFlag:
    def test_count_writes_trace_json(self, graph_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["count", graph_file, "--jobs", "2",
                     "--trace", str(trace_path)]) == 0
        err = capsys.readouterr().err
        assert str(trace_path) in err
        tree = json.loads(trace_path.read_text())
        assert tree["name"] == "count"
        names = set()
        stack = [tree]
        while stack:
            node = stack.pop()
            names.add(node["name"])
            stack.extend(node["children"])
        assert {"decompose", "pack", "ship", "execute", "chunk",
                "merge"} <= names

    def test_enumerate_serial_trace(self, graph_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["enumerate", graph_file,
                     "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        tree = json.loads(trace_path.read_text())
        assert [c["name"] for c in tree["children"]] == ["enumerate"]
        assert tree["attrs"]["counters"]["emitted"] == 1

    def test_trace_incompatible_with_all(self, graph_file, tmp_path, capsys):
        assert main(["count", graph_file, "--all",
                     "--trace", str(tmp_path / "t.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "--all" in err

    def test_serve_metrics_flag_documented(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        assert "--metrics" in capsys.readouterr().out
