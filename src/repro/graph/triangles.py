"""Triangle listing and counting.

Triangles drive two parts of the reproduction:

* edge *support* (number of triangles through an edge) feeds the truss-based
  edge ordering of Section III-B, and
* HBBMC's O(delta * m) preprocessing bound rests on the fact that listing
  all triangles of a graph with degeneracy ``delta`` costs O(delta * m).

The implementation orients every edge from earlier to later in a degeneracy
ordering and intersects forward-neighbour sets — the standard
Chiba–Nishizeki / forward algorithm.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.adjacency import Graph
from repro.graph.coreness import core_decomposition


def oriented_adjacency(g: Graph, position: list[int] | None = None) -> list[set[int]]:
    """Forward adjacency: neighbours that come *later* in the ordering.

    ``position`` defaults to the degeneracy ordering's positions, which
    bounds every forward set by ``delta``.
    """
    if position is None:
        position = core_decomposition(g).position
    return [
        {w for w in g.adj[v] if position[w] > position[v]}
        for v in g.vertices()
    ]


def iter_triangles(g: Graph) -> Iterator[tuple[int, int, int]]:
    """Yield every triangle exactly once as an (a, b, c) tuple.

    Vertices inside a triangle are emitted in increasing position of the
    degeneracy ordering, so the output is deterministic for a fixed graph.
    """
    decomposition = core_decomposition(g)
    forward = oriented_adjacency(g, decomposition.position)
    for v in decomposition.order:
        fv = forward[v]
        for w in fv:
            for x in fv & forward[w]:
                yield (v, w, x)


def triangle_count(g: Graph) -> int:
    """Total number of triangles in the graph."""
    decomposition = core_decomposition(g)
    forward = oriented_adjacency(g, decomposition.position)
    total = 0
    for v in g.vertices():
        fv = forward[v]
        for w in fv:
            total += len(fv & forward[w])
    return total


def edge_support(g: Graph) -> dict[tuple[int, int], int]:
    """Support (triangle count) of every edge, keyed by canonical (u, v).

    Matches the quantity the truss peel repeatedly recomputes; computing it
    once up front lets the peel start from the right values.
    """
    support: dict[tuple[int, int], int] = {
        (u, v): 0 for u, v in g.edges()
    }
    for a, b, c in iter_triangles(g):
        for u, v in ((a, b), (a, c), (b, c)):
            key = (u, v) if u < v else (v, u)
            support[key] += 1
    return support


def local_triangle_counts(g: Graph) -> list[int]:
    """Number of triangles through each vertex."""
    counts = [0] * g.n
    for a, b, c in iter_triangles(g):
        counts[a] += 1
        counts[b] += 1
        counts[c] += 1
    return counts
