"""The warm-pool enumeration service.

:class:`CliqueService` is the long-running counterpart of the one-shot
API: it owns a :class:`repro.parallel.pool.WorkerPool` that outlives any
single request and a :class:`repro.service.registry.GraphRegistry` that
caches every per-graph prologue artifact (degeneracy decomposition, cost
model, chunk packing, degeneracy-packed bitmask view).  The first request
against a graph pays the prologue and ships the graph state to the
workers once; every later request — any registered algorithm, backend or
bit order — is pure enumeration compute.

Thread safety: one internal lock serialises requests, so a service
instance can sit behind a threaded TCP server
(:mod:`repro.service.server`) without interleaving pool traffic.
"""

from __future__ import annotations

import threading
import time

from repro.api import DEFAULT_ALGORITHM
from repro.exceptions import InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.generators import load_dataset
from repro.graph.io import load_graph
from repro.obs import MetricsRegistry, Tracer, maybe_span, render_text
from repro.parallel.aggregate import CollectAggregator, CountAggregator
from repro.parallel.decompose import DEFAULT_COST_MODEL, uses_in_place_phase
from repro.parallel.pool import (
    ParallelStats,
    RequestConfig,
    WorkerPool,
    record_steal_metrics,
    validate_n_jobs,
    validate_parallel_options,
)
from repro.parallel.scheduler import DEFAULT_CHUNK_STRATEGY, chunk_summary
from repro.service.registry import GraphRegistry
from repro.verify import clique_fingerprint


class CliqueService:
    """Long-lived enumeration service over a warm pool and artifact cache.

    Usage::

        with CliqueService(n_jobs=4) as service:
            info = service.register(g, name="web")
            cold = service.count("web")                 # pays the prologue
            warm = service.count("web", backend="bitset")  # pure compute
            assert warm["warm"] and not cold["warm"]

    Every request accepts any registered algorithm plus the
    branch-and-bound knobs (``backend=``, ``bit_order=``,
    ``et_threshold=``, ...) — the cached artifacts are knob-independent,
    so switching algorithms between requests stays warm.
    """

    def __init__(
        self,
        *,
        n_jobs: int = 1,
        chunk_strategy: str = DEFAULT_CHUNK_STRATEGY,
        cost_model: str = DEFAULT_COST_MODEL,
        chunks_per_worker: int = 1,
    ) -> None:
        self.n_jobs = validate_n_jobs(n_jobs)
        if isinstance(chunks_per_worker, bool) \
                or not isinstance(chunks_per_worker, int) \
                or chunks_per_worker < 1:
            raise InvalidParameterError(
                f"chunks_per_worker must be a positive integer, "
                f"got {chunks_per_worker!r}"
            )
        self.chunk_strategy = chunk_strategy
        self.cost_model = cost_model
        self.chunks_per_worker = chunks_per_worker
        self.registry = GraphRegistry()
        self._pool = WorkerPool(self.n_jobs, warm=True)
        self._lock = threading.RLock()
        self._closed = False
        # Monotonic clock: uptime must never jump with NTP slews or
        # operator clock changes (the old time.time() baseline could even
        # go negative).
        self._started_at = time.monotonic()
        self._requests = 0
        self._warm_requests = 0
        self._requests_by_op: dict[str, int] = {}
        #: Service-lifetime telemetry: request counters and latency
        #: histograms land here, and every request folds its workers'
        #: registries (chunk CPU, ``mce_*`` branch counters) in.
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, g: Graph, *, name: str | None = None) -> dict:
        """Register a graph object; returns its entry info (idempotent)."""
        with self._lock:
            self._check_open()
            before = len(self.registry)
            entry = self.registry.register(g, name=name)
            info = entry.info()
            info["new"] = len(self.registry) > before
            return info

    def register_file(self, path, *, fmt: str | None = None,
                      name: str | None = None) -> dict:
        """Load a graph file (any supported format) and register it."""
        from pathlib import Path

        g = load_graph(path, fmt=fmt)
        return self.register(g, name=name or Path(path).stem)

    def register_dataset(self, code: str, *, name: str | None = None) -> dict:
        """Register one of the bundled proxy datasets under its code."""
        return self.register(load_dataset(code), name=name or code)

    def graphs(self) -> list[dict]:
        """Info for every registered graph, oldest first."""
        with self._lock:
            return [entry.info() for entry in self.registry.entries()]

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def count(self, graph: str, *, algorithm: str = DEFAULT_ALGORITHM,
              x_aware: bool = True, steal: bool = False, trace: bool = False,
              **options) -> dict:
        """Count the maximal cliques of a registered graph.

        ``trace=True`` adds a ``"trace"`` span tree (decompose → pack →
        ship → per-chunk enumerate → merge) plus the per-chunk worker
        timeline to the response.
        """
        aggregator = CountAggregator()

        def finalize(result: dict, tracer: Tracer | None) -> None:
            with maybe_span(tracer, "merge", mode=aggregator.mode):
                result["count"] = aggregator.finish()
            result["max_clique_size"] = aggregator.max_size

        result, tracer = self._execute("count", graph, aggregator, algorithm,
                                       x_aware, steal, trace, options,
                                       finalize)
        return self._attach_trace(result, tracer)

    def enumerate(self, graph: str, *, algorithm: str = DEFAULT_ALGORITHM,
                  limit: int | None = None, x_aware: bool = True,
                  steal: bool = False, trace: bool = False,
                  **options) -> dict:
        """Enumerate the maximal cliques of a registered graph.

        ``limit`` truncates the returned list (the enumeration itself is
        complete, so ``count`` is always the true total); negative limits
        are rejected — a silent ``[:-k]`` would drop cliques from the end.
        """
        if limit is not None:
            if isinstance(limit, bool) or not isinstance(limit, int) \
                    or limit < 0:
                raise InvalidParameterError(
                    f"limit must be a non-negative integer, got {limit!r}"
                )
        aggregator = CollectAggregator()

        def finalize(result: dict, tracer: Tracer | None) -> None:
            with maybe_span(tracer, "merge", mode=aggregator.mode):
                cliques = aggregator.finish()
            result["count"] = len(cliques)
            shown = cliques if limit is None else cliques[:limit]
            result["cliques"] = [list(c) for c in shown]
            result["truncated"] = len(shown) < len(cliques)

        result, tracer = self._execute("enumerate", graph, aggregator,
                                       algorithm, x_aware, steal, trace,
                                       options, finalize)
        return self._attach_trace(result, tracer)

    def fingerprint(self, graph: str, *, algorithm: str = DEFAULT_ALGORITHM,
                    x_aware: bool = True, steal: bool = False,
                    trace: bool = False, **options) -> dict:
        """SHA256 fingerprint of the canonical clique list.

        Byte-identical to ``clique_fingerprint(maximal_cliques(g, ...))``
        on the direct path — the golden-oracle check, served warm.
        """
        aggregator = CollectAggregator()

        def finalize(result: dict, tracer: Tracer | None) -> None:
            with maybe_span(tracer, "merge", mode=aggregator.mode):
                cliques = aggregator.finish()
                sha256 = clique_fingerprint(cliques)
            result["count"] = len(cliques)
            result["sha256"] = sha256

        result, tracer = self._execute("fingerprint", graph, aggregator,
                                       algorithm, x_aware, steal, trace,
                                       options, finalize)
        return self._attach_trace(result, tracer)

    @staticmethod
    def _attach_trace(result: dict, tracer: Tracer | None) -> dict:
        """Close the request's tracer and embed the span tree, if any."""
        if tracer is not None:
            tracer.finish()
            result["trace"] = tracer.to_dict()
        return result

    def _execute(self, op: str, graph: str, aggregator, algorithm: str,
                 x_aware, steal, trace, options: dict,
                 finalize) -> tuple[dict, Tracer | None]:
        """Run one request end to end under the service lock.

        ``finalize`` is the operation's merge step (``aggregator.finish``
        plus whatever digest the op derives from it); it runs *inside*
        the observed duration, so ``service_request_seconds`` and the
        response's ``seconds`` cover the full request — decompose through
        merge — not just the fan-out.  (The old shape finished the
        aggregator after the clock stopped, under-reporting
        enumerate/fingerprint latency by the whole merge phase.)
        """
        with self._lock:
            self._check_open()
            if not isinstance(x_aware, bool):
                raise InvalidParameterError(
                    f"x_aware must be a bool, got {x_aware!r}"
                )
            if not isinstance(steal, bool):
                raise InvalidParameterError(
                    f"steal must be a bool, got {steal!r}"
                )
            if not isinstance(trace, bool):
                raise InvalidParameterError(
                    f"trace must be a bool, got {trace!r}"
                )
            if "initial_x" in options:
                raise InvalidParameterError(
                    "initial_x cannot be combined with the service path; "
                    "the decomposition seeds it per subproblem"
                )
            entry = self.registry.resolve(graph)
            validate_parallel_options(entry.graph, algorithm, options)

            tracer = Tracer(
                op, graph=entry.fingerprint, graph_name=entry.name,
                algorithm=algorithm, n_jobs=self.n_jobs,
            ) if trace else None

            spinups = self._pool.spinups
            ships = self._pool.graph_ships
            decomposes = self.registry.stats.decompose_calls

            start = time.perf_counter()
            with maybe_span(tracer, "decompose", cost_model=self.cost_model):
                decomposition = self.registry.decomposition(
                    entry, self.cost_model)
            decompose_seconds = time.perf_counter() - start
            with maybe_span(tracer, "pack", strategy=self.chunk_strategy,
                            steal=steal) as pack_span:
                splits = []
                if steal:
                    resplit_ok = x_aware and uses_in_place_phase(
                        algorithm, options)
                    chunks, splits, requested = self.registry.steal_plan(
                        entry, self.cost_model, self.chunk_strategy,
                        self.n_jobs, self.chunks_per_worker, resplit_ok,
                    )
                else:
                    chunks = self.registry.chunks(
                        entry, self.cost_model, self.chunk_strategy,
                        self.n_jobs * self.chunks_per_worker,
                    )
                    requested = min(self.n_jobs * self.chunks_per_worker,
                                    len(decomposition.subproblems))
                if tracer is not None:
                    pack_span.attrs.update(chunk_summary(chunks, requested))
            config = RequestConfig(
                algorithm=algorithm, options=options,
                mode=aggregator.mode, x_aware=x_aware, steal=steal,
                trace=tracer.current if tracer is not None else None,
            )
            aggregator.start(len(decomposition.subproblems))
            report = self._pool.submit(entry.fingerprint, entry.graph_state,
                                       config, chunks, aggregator.accept,
                                       tracer=tracer, splits=splits)
            record_steal_metrics(aggregator.metrics, report)

            warm = (self._pool.spinups == spinups
                    and self._pool.graph_ships == ships
                    and self.registry.stats.decompose_calls == decomposes)

            result = {
                "graph": entry.fingerprint,
                "name": entry.name,
                "algorithm": algorithm,
                "n_jobs": self.n_jobs,
                "warm": warm,
            }
            # The merge phase belongs to the request: run it before the
            # duration is captured so the committed latency covers it.
            finalize(result, tracer)
            seconds = time.perf_counter() - start
            result["seconds"] = seconds

            self._requests += 1
            if warm:
                self._warm_requests += 1
            self._requests_by_op[op] = self._requests_by_op.get(op, 0) + 1

            # Registry-side accounting.  The aggregator's registry already
            # carries each worker's fold (chunk CPU histograms, mce_*
            # branch counters, steal counts), so the merge — not a
            # re-fold — keeps the totals single-counted.
            self.metrics.counter("service_requests_total",
                                 labels={"op": op}).inc()
            if warm:
                self.metrics.counter("service_warm_requests_total").inc()
            self.metrics.histogram("service_request_seconds",
                                   labels={"op": op}).observe(seconds)
            self.metrics.merge(aggregator.metrics)

            if tracer is not None:
                for record in aggregator.spans:
                    tracer.attach(record)
                tracer.annotate(counters=aggregator.counters.as_dict())

            if tracer is not None:
                stats = ParallelStats(
                    n_jobs=self.n_jobs,
                    n_subproblems=len(decomposition.subproblems),
                    n_chunks=len(chunks),
                    chunk_strategy=self.chunk_strategy,
                    cost_model=self.cost_model,
                    start_method=self._pool.start_method,
                    x_aware=x_aware,
                    steal=steal,
                    steals=report.steals,
                    resplit_subproblems=report.resplit_subproblems,
                    resplit_tasks=report.resplit_tasks,
                    decompose_seconds=decompose_seconds,
                    chunk_cpu_seconds=dict(aggregator.chunk_cpu_seconds),
                    timeline=list(aggregator.timeline),
                )
                result["timeline"] = [e.as_dict() for e in stats.timeline]
                result["parallel"] = {
                    "n_chunks": stats.n_chunks,
                    "steal": stats.steal,
                    "steals": stats.steals,
                    "resplit_subproblems": stats.resplit_subproblems,
                    "resplit_tasks": stats.resplit_tasks,
                    "decompose_seconds": stats.decompose_seconds,
                    "total_cpu_seconds": stats.total_cpu_seconds,
                    "critical_path_seconds": stats.critical_path_seconds,
                }
            return result, tracer

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service-level counters: the warm-path audit trail.

        A fully warm steady state shows ``requests`` growing while
        ``decompose_calls``, ``pool_spinups`` and ``graph_ships`` stay
        flat — exactly the assertion the service tests make.
        """
        with self._lock:
            reg = self.registry.stats
            return {
                "uptime_seconds": time.monotonic() - self._started_at,
                "request_seconds": self.metrics.summary(
                    "service_request_seconds"),
                "requests": self._requests,
                "requests_by_op": dict(self._requests_by_op),
                "warm_requests": self._warm_requests,
                "graphs_registered": len(self.registry),
                "decompose_calls": reg.decompose_calls,
                "decompose_cache_hits": reg.decompose_cache_hits,
                "chunk_builds": reg.chunk_builds,
                "chunk_cache_hits": reg.chunk_cache_hits,
                "steal_plan_builds": reg.steal_plan_builds,
                "steal_plan_cache_hits": reg.steal_plan_cache_hits,
                "pool_spinups": self._pool.spinups,
                "graph_ships": self._pool.graph_ships,
                "pool_live": self._pool.is_live,
                "start_method": self._pool.start_method,
                "n_jobs": self.n_jobs,
                "chunk_strategy": self.chunk_strategy,
                "cost_model": self.cost_model,
            }

    def metrics_snapshot(self) -> dict:
        """JSON snapshot of the service registry (gauges refreshed first)."""
        with self._lock:
            self._refresh_gauges()
            return self.metrics.as_dict()

    def metrics_text(self) -> str:
        """Prometheus text exposition of the service registry."""
        with self._lock:
            self._refresh_gauges()
            return render_text(self.metrics)

    def _refresh_gauges(self) -> None:
        """Point-in-time gauges, read from their authoritative sources.

        These are *set* at scrape time rather than maintained on every
        request, so the request hot path pays only its own counters.
        """
        m = self.metrics
        reg = self.registry.stats
        m.gauge("service_uptime_seconds").set(
            time.monotonic() - self._started_at)
        m.gauge("service_graphs_registered").set(len(self.registry))
        m.gauge("service_pool_live").set(1.0 if self._pool.is_live else 0.0)
        m.gauge("service_pool_spinups").set(self._pool.spinups)
        m.gauge("service_graph_ships").set(self._pool.graph_ships)
        m.gauge("service_decompose_calls").set(reg.decompose_calls)
        m.gauge("service_decompose_cache_hits").set(reg.decompose_cache_hits)
        m.gauge("service_chunk_builds").set(reg.chunk_builds)
        m.gauge("service_chunk_cache_hits").set(reg.chunk_cache_hits)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Tear the worker pool down; idempotent."""
        with self._lock:
            self._pool.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise InvalidParameterError("service is closed")

    def __enter__(self) -> "CliqueService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
