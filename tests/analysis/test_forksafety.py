"""The fork-safety checker against good and bad fixture trees."""

from repro.analysis.checkers import forksafety
from repro.analysis.config import LintConfig
from repro.analysis.index import ModuleIndex

CONFIG = LintConfig(
    worker_entry_module="workers.entry",
    worker_entry_functions=("run_task",),
    pool_spawn_function="PoolOwner._ensure_pool",
)


def _findings(fixtures, tree):
    index = ModuleIndex.build(fixtures / tree)
    return forksafety.check(index, CONFIG)


class TestForkBad:
    def test_import_time_lock_flagged(self, fixtures):
        findings = _findings(fixtures, "fork_bad")
        hits = [f for f in findings if "threading.Lock" in f.message]
        assert len(hits) == 1
        assert hits[0].rel == "workers/state.py"
        assert "import time" in hits[0].message

    def test_wall_clock_on_worker_path_flagged(self, fixtures):
        findings = _findings(fixtures, "fork_bad")
        hits = [f for f in findings if "time.time()" in f.message]
        assert len(hits) == 2  # two call sites in run_task
        assert all("run_task" in f.message for f in hits)

    def test_setup_path_resource_flagged(self, fixtures):
        findings = _findings(fixtures, "fork_bad")
        hits = [f for f in findings if "socket.socket" in f.message]
        assert len(hits) == 1
        assert "before the Pool(...) spawn" in hits[0].message


class TestForkGood:
    def test_clean_tree(self, fixtures):
        assert _findings(fixtures, "fork_good") == []
