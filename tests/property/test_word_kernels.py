"""Property tests for the word-packed kernels (``repro.graph.wordadj``).

Three layers of assurance for the words backend, below the three-way
engine equivalence suites:

* **Representation round-trip** — random ``int`` masks survive
  ``int -> row -> int`` exactly, for widths from one word to many, so the
  word rows and the bitset masks are two spellings of the same set.
* **Kernel parity** — vectorised AND / ANDNOT / OR / popcount /
  bit-iteration over rows agree with the arbitrary-precision ``int``
  operators on every fuzzed pair, through both popcount paths (native
  ``np.bitwise_count`` and the SWAR fallback for NumPy < 2.0).
* **Workspace discipline** — per-depth scratch rows never alias across
  depths (or within a frame), and forcing the recursion fully into word
  space (dispatch threshold floored) still reproduces the set backend.
"""

import random

import numpy as np
import pytest

from repro.api import maximal_cliques
from repro.graph.bitadj import BitGraph
from repro.graph.generators import erdos_renyi_gnm, erdos_renyi_gnp
from repro.graph.wordadj import (
    WordGraph,
    WordWorkspace,
    _popcount_fallback,
    int_to_row,
    iter_row_bits,
    popcount_rows,
    row_bits_list,
    row_members,
    row_of_mask,
    row_popcount,
    row_to_int,
    select_popcount,
    word_width,
)

WIDTHS = [1, 2, 3, 7]


def _random_mask(rng, width):
    """A random mask over ``width * 64`` bits, biased toward edge shapes."""
    nbits = width * 64
    shape = rng.randrange(5)
    if shape == 0:
        return 0
    if shape == 1:
        return (1 << nbits) - 1
    if shape == 2:  # sparse
        return sum(1 << rng.randrange(nbits) for _ in range(3))
    if shape == 3:  # word-boundary straddling run
        start = rng.randrange(nbits - 1)
        stop = rng.randrange(start + 1, nbits + 1)
        return ((1 << stop) - 1) ^ ((1 << start) - 1)
    return rng.getrandbits(nbits)


class TestRoundTrip:
    def test_word_width(self):
        assert word_width(1) == 1
        assert word_width(64) == 1
        assert word_width(65) == 2
        assert word_width(128) == 2
        assert word_width(129) == 3

    @pytest.mark.parametrize("width", WIDTHS)
    @pytest.mark.parametrize("seed", range(5))
    def test_int_row_int_is_identity(self, width, seed):
        rng = random.Random(seed * 100 + width)
        for _ in range(50):
            mask = _random_mask(rng, width)
            assert row_to_int(row_of_mask(mask, width)) == mask

    @pytest.mark.parametrize("width", WIDTHS)
    def test_int_to_row_fills_preallocated_row(self, width):
        rng = random.Random(width)
        out = np.empty(width, dtype=np.uint64)
        for _ in range(20):
            mask = _random_mask(rng, width)
            got = int_to_row(mask, out)
            assert got is out  # in-place: the engines reuse their rows
            assert row_to_int(out) == mask

    def test_rows_are_writable(self):
        # np.frombuffer views are read-only; the helpers must hand back
        # owned, mutable rows or the in-place engine updates would fail.
        row = row_of_mask((1 << 100) | 5, 2)
        row[0] |= np.uint64(2)
        assert row_to_int(row) == (1 << 100) | 7


class TestKernelParity:
    @pytest.mark.parametrize("width", WIDTHS)
    @pytest.mark.parametrize("seed", range(5))
    def test_bitwise_ops_match_int_ops(self, width, seed):
        rng = random.Random(seed * 31 + width)
        for _ in range(30):
            a, b = _random_mask(rng, width), _random_mask(rng, width)
            ra, rb = row_of_mask(a, width), row_of_mask(b, width)
            assert row_to_int(np.bitwise_and(ra, rb)) == a & b
            assert row_to_int(np.bitwise_or(ra, rb)) == a | b
            assert row_to_int(np.bitwise_xor(ra, rb)) == a ^ b
            # ANDNOT — the candidate-refinement kernel.
            assert row_to_int(ra & np.bitwise_not(rb)) == a & ~b & ((1 << width * 64) - 1)

    @pytest.mark.parametrize("width", WIDTHS)
    @pytest.mark.parametrize("seed", range(5))
    def test_popcount_matches_bit_count(self, width, seed):
        rng = random.Random(seed * 17 + width)
        for _ in range(30):
            mask = _random_mask(rng, width)
            row = row_of_mask(mask, width)
            assert row_popcount(row) == mask.bit_count()
            assert int(popcount_rows(row).sum()) == mask.bit_count()

    @pytest.mark.parametrize("width", WIDTHS)
    @pytest.mark.parametrize("seed", range(5))
    def test_bit_iteration_matches_int_bits(self, width, seed):
        rng = random.Random(seed * 13 + width)
        for _ in range(30):
            mask = _random_mask(rng, width)
            expect = [i for i in range(width * 64) if mask >> i & 1]
            row = row_of_mask(mask, width)
            assert list(iter_row_bits(row)) == expect
            assert row_members(row).tolist() == expect
            assert row_bits_list(row) == expect

    def test_wordgraph_rows_equal_bit_masks(self):
        g = erdos_renyi_gnm(90, 1200, seed=5)
        for order in ("input", "degeneracy"):
            wg = WordGraph.from_graph(g, order=order)
            assert wg.width == word_width(g.n)
            for b in range(g.n):
                assert row_to_int(wg.words[b]) == wg.bit.masks[b]
        perm = list(range(g.n))
        random.Random(5).shuffle(perm)
        wg = WordGraph(BitGraph.from_graph(g, order=perm))
        for b in range(g.n):
            assert row_to_int(wg.words[b]) == wg.bit.masks[b]


class TestPopcountPaths:
    """Both sides of the NumPy-version gate, pinned independently."""

    def test_gate_picks_native_when_present(self):
        class WithNative:
            @staticmethod
            def bitwise_count(rows, out=None):  # pragma: no cover - marker
                raise AssertionError("never called")

        assert select_popcount(WithNative) is WithNative.bitwise_count

    def test_gate_falls_back_without_native(self):
        class Numpy1x:
            pass  # no bitwise_count attribute, like NumPy < 2.0

        assert select_popcount(Numpy1x) is _popcount_fallback

    @pytest.mark.parametrize("seed", range(5))
    def test_fallback_exact_on_fuzzed_words(self, seed):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 1 << 64, size=256, dtype=np.uint64)
        words[:4] = (0, 1, (1 << 64) - 1, 0x8000000000000000)
        expect = np.array([int(w).bit_count() for w in words], dtype=np.uint8)
        assert np.array_equal(_popcount_fallback(words), expect)
        out = np.empty(words.shape, dtype=np.uint8)
        assert _popcount_fallback(words, out=out) is out
        assert np.array_equal(out, expect)

    @pytest.mark.skipif(not hasattr(np, "bitwise_count"),
                        reason="installed NumPy predates bitwise_count")
    def test_fallback_matches_native(self):
        rng = np.random.default_rng(99)
        words = rng.integers(0, 1 << 64, size=1024, dtype=np.uint64)
        assert np.array_equal(_popcount_fallback(words),
                              np.bitwise_count(words).astype(np.uint8))

    def test_engine_correct_on_fallback_path(self, monkeypatch):
        """A full enumeration with the SWAR kernel pinned: what a
        NumPy 1.x user runs end to end."""
        import repro.graph.wordadj as wordadj

        monkeypatch.setattr(wordadj, "_POPCOUNT", _popcount_fallback)
        g = erdos_renyi_gnm(60, 700, seed=3)
        assert (maximal_cliques(g, algorithm="hbbmc++", backend="words")
                == maximal_cliques(g, algorithm="hbbmc++", backend="set"))


class TestWorkspaceDiscipline:
    def test_scratch_rows_never_alias_across_depths(self):
        ws = WordWorkspace(WordGraph.from_graph(erdos_renyi_gnp(70, 0.3, seed=1)))
        frames = [ws.frame(d) for d in range(6)]
        rows = [(d, name, getattr(f, name))
                for d, f in enumerate(frames) for name in ("c", "x", "t")]
        for i, (d1, n1, r1) in enumerate(rows):
            for d2, n2, r2 in rows[i + 1:]:
                assert not np.shares_memory(r1, r2), (
                    f"frame({d1}).{n1} aliases frame({d2}).{n2}")

    def test_frames_are_stable_across_lookups(self):
        ws = WordWorkspace(WordGraph.from_graph(erdos_renyi_gnp(20, 0.4, seed=2)))
        f3 = ws.frame(3)
        assert ws.frame(3) is f3
        assert ws.frame(1) is ws.frames[1]  # growing to 3 built 0..3

    def test_scan_buffers_sized_for_the_graph(self):
        g = erdos_renyi_gnp(130, 0.2, seed=3)
        ws = WordWorkspace(WordGraph.from_graph(g))
        assert ws.gather.shape == (g.n, word_width(g.n))
        assert ws.counts.shape == (g.n, word_width(g.n))
        assert ws.degrees.shape == (g.n,)


class TestDispatchThreshold:
    """The word/bit handoff point is a pure performance knob."""

    @pytest.mark.parametrize("threshold", [0, 8, 10 ** 9])
    @pytest.mark.parametrize("algorithm", ["hbbmc++", "ebbmc++", "bk-pivot"])
    def test_any_threshold_reproduces_set_backend(self, monkeypatch,
                                                  algorithm, threshold):
        import repro.core.word_phases as word_phases

        monkeypatch.setattr(word_phases, "WORD_DISPATCH_THRESHOLD", threshold)
        g = erdos_renyi_gnm(60, 700, seed=7)
        reference = maximal_cliques(g, algorithm=algorithm, backend="set")
        for bit_order in ("input", "degeneracy"):
            assert maximal_cliques(g, algorithm=algorithm, backend="words",
                                   bit_order=bit_order) == reference

    def test_threshold_zero_runs_word_phases_to_the_leaves(self, monkeypatch):
        """With the floor in force the deep recursion really is word-space:
        the word pivot phase must fire on branches of every size above the
        tiny-branch floor, not just the root."""
        import repro.core.word_phases as word_phases

        calls = []
        original = word_phases.word_pivot_phase

        def spy(S, C, X, cand, full, ctx, ws=None, depth=0):
            calls.append(len(S))
            return original(S, C, X, cand, full, ctx, ws, depth)

        monkeypatch.setattr(word_phases, "WORD_DISPATCH_THRESHOLD", 0)
        monkeypatch.setattr(word_phases, "word_pivot_phase", spy)
        g = erdos_renyi_gnm(60, 700, seed=7)
        maximal_cliques(g, algorithm="bk-pivot", backend="words")
        assert calls and max(calls) >= 3  # recursion went deep in word space
