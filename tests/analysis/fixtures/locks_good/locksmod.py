"""Clean lock discipline: guarded mutations, one consistent lock order."""

import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = {}

    def put(self, key, value):
        with self._lock:
            self._put_locked(key, value)

    def _put_locked(self, key, value):
        self.items[key] = value

    def drop(self, key):
        with self._lock:
            self.items.pop(key, None)


class Alpha:
    def __init__(self, peer):
        self._lock = threading.Lock()
        self.peer = peer
        self.value = 0

    def poke(self):
        with self._lock:
            self.value += 1
            self.peer.bump()

    def bump(self):
        with self._lock:
            self.value += 1


class Beta:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def bump(self):
        with self._lock:
            self.value += 1
