"""Knob fixture (good): the request schema accepts every request knob."""

OPTION_FIELDS = ("backend",)

_COMMON_FIELDS = {"op", "id"}


def _request_options(request, *extra):
    allowed = _COMMON_FIELDS | {"graph", "algorithm", "x_aware"} \
        | set(OPTION_FIELDS) | set(extra)
    return {k: request[k] for k in OPTION_FIELDS if k in request}, allowed


def handle_request(service, request):
    options, _ = _request_options(request, "limit")
    try:
        return {"ok": True, "options": options}, False
    except ValueError as exc:
        return {"ok": False, "error": str(exc)}, False
