"""Unit tests for the Table I proxy dataset suite."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.graph.generators import DATASET_NAMES, PAPER_STATS, load_dataset, paper_stats
from repro.graph.generators.dataset_suite import social_proxy
from repro.graph.metrics import graph_stats


class TestRegistry:
    def test_sixteen_datasets(self):
        assert len(DATASET_NAMES) == 16
        assert set(DATASET_NAMES) == set(PAPER_STATS)

    def test_unknown_dataset(self):
        with pytest.raises(InvalidParameterError):
            load_dataset("XX")
        with pytest.raises(InvalidParameterError):
            paper_stats("XX")

    def test_paper_stats_table1_row(self):
        p = paper_stats("OR")
        assert p.name == "orkut"
        assert p.n == 2997166
        assert p.degeneracy == 253
        assert p.tau == 74

    def test_case_insensitive(self):
        assert load_dataset("na") is load_dataset("NA")


class TestProxies:
    def test_caching_returns_same_object(self):
        assert load_dataset("WE") is load_dataset("WE")

    @pytest.mark.parametrize("name", ["NA", "FB", "WE", "DB", "YO"])
    def test_proxies_are_simple_nonempty(self, name):
        g = load_dataset(name)
        assert g.n > 100
        assert g.m > g.n  # denser than a tree
        # simplicity is guaranteed by Graph, but check no isolated explosion
        assert sum(1 for v in g.vertices() if g.degree(v) == 0) < g.n // 10

    def test_condition_pattern_mirrors_paper(self):
        """WE and DB fail Theorem 2's condition (as in the paper); most
        social proxies satisfy it."""
        assert not graph_stats(load_dataset("WE")).satisfies_condition
        assert not graph_stats(load_dataset("DB")).satisfies_condition
        satisfied = sum(
            graph_stats(load_dataset(name)).satisfies_condition
            for name in DATASET_NAMES
        )
        assert satisfied >= 12

    def test_social_proxy_plexes_planted(self):
        g = social_proxy(120, 4, 0.4, 30, 200, seed=3,
                         plexes=2, plex_size=8, plex_missing=2)
        assert g.n == 120


class TestDeterminism:
    def test_rebuild_identical(self):
        from repro.graph.generators.dataset_suite import _BUILDERS

        a = _BUILDERS["YO"]()
        b = _BUILDERS["YO"]()
        assert sorted(a.edges()) == sorted(b.edges())
