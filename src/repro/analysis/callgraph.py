"""Project-wide call graph over the :class:`ModuleIndex`.

Every function the index knows gets a stable :data:`FunctionId`
(``"module:qualname"``); every call site inside it is resolved to either
another project function id or a dotted external name (``"time.time"``,
``"threading.Lock"``).  Resolution is intentionally lightweight — it
covers exactly the idioms this codebase uses:

* bare names: module-level functions and classes of the same module,
  ``from m import f`` aliases (relative imports included), builtins;
* ``module.attr(...)`` through ``import m`` / ``import m as alias``;
* ``self.method(...)`` inside a class body;
* ``self.attr.method(...)`` through the configured ``attribute_types``
  links (the one piece of type information an AST cannot carry).

A call on a local variable stays unresolved (``None``) rather than
guessed.  Class constructors resolve to the class's ``__init__`` when it
has one, so reachability walks straight through object creation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.index import FunctionInfo, ModuleIndex, ModuleInfo

#: ``"module:qualname"`` — the stable identity of a project function.
FunctionId = str

#: pseudo-function holding a module's import-time statements.
MODULE_BODY = "<module>"


@dataclass(frozen=True)
class CallSite:
    """One resolved call: who calls, what resolves, where."""

    caller: FunctionId
    callee: str
    line: int


@dataclass
class ClassInfo:
    """One class definition: its methods and annotated fields by name."""

    module: str
    name: str
    lineno: int
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class-body ``name: annotation`` declarations (dataclass fields).
    fields: dict[str, ast.expr] = field(default_factory=dict)
    #: lineno of each annotated field, for finding anchors.
    field_lines: dict[str, int] = field(default_factory=dict)

    @property
    def class_id(self) -> str:
        return f"{self.module}:{self.name}"


@dataclass
class ModuleSymbols:
    """Name-resolution tables for one module."""

    #: bound name -> dotted module path (``import x.y as z``).
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: bound name -> ``(source module, attribute)`` (``from m import f``).
    object_aliases: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: classes defined in the module, by bare name.
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level functions, by bare name.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level ``Name = <type expression>`` aliases (no call on the
    #: right-hand side), for annotation resolution.
    type_aliases: dict[str, ast.expr] = field(default_factory=dict)


def _package_of(info: ModuleInfo, level: int) -> str:
    """The base package a ``level``-deep relative import resolves against."""
    parts = info.name.split(".")
    if info.path.name != "__init__.py":
        parts = parts[:-1]
    for _ in range(level - 1):
        if parts:
            parts = parts[:-1]
    return ".".join(parts)


def _attribute_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``None`` for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class CallGraph:
    """Resolved call sites for every function of one :class:`ModuleIndex`."""

    def __init__(
        self,
        index: ModuleIndex,
        attribute_types: tuple[tuple[str, str], ...] = (),
    ) -> None:
        self.index = index
        self.attribute_types: dict[str, str] = dict(attribute_types)
        self.symbols: dict[str, ModuleSymbols] = {}
        self.functions: dict[FunctionId, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: dict[FunctionId, list[CallSite]] = {}
        for info in index:
            self.symbols[info.name] = self._collect_symbols(info)
        for info in index:
            self._collect_calls(info)

    # ------------------------------------------------------------------
    # Symbol tables
    # ------------------------------------------------------------------
    def _collect_symbols(self, info: ModuleInfo) -> ModuleSymbols:
        symbols = ModuleSymbols()
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        symbols.module_aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".", 1)[0]
                        symbols.module_aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = _package_of(info, node.level)
                    source = f"{base}.{node.module}" if node.module else base
                else:
                    source = node.module or ""
                for alias in node.names:
                    bound = alias.asname or alias.name
                    symbols.object_aliases[bound] = (source, alias.name)
        for node in info.tree.body:
            if isinstance(node, ast.ClassDef):
                cls = ClassInfo(module=info.name, name=node.name,
                                lineno=node.lineno)
                prefix = f"{node.name}."
                for func in info.functions:
                    qual = func.qualname
                    if qual.startswith(prefix) and "." not in \
                            qual[len(prefix):]:
                        cls.methods[func.name] = func
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) \
                            and isinstance(stmt.target, ast.Name):
                        cls.fields[stmt.target.id] = stmt.annotation
                        cls.field_lines[stmt.target.id] = stmt.lineno
                symbols.classes[node.name] = cls
                self.classes[cls.class_id] = cls
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and not any(isinstance(n, ast.Call)
                                for n in ast.walk(node.value)):
                symbols.type_aliases[node.targets[0].id] = node.value
        for func in info.functions:
            self.functions[f"{info.name}:{func.qualname}"] = func
            if func.qualname == func.name:
                symbols.functions[func.name] = func
        return symbols

    # ------------------------------------------------------------------
    # Call collection
    # ------------------------------------------------------------------
    def _collect_calls(self, info: ModuleInfo) -> None:
        graph = self

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                #: class and function name segments, mirroring the
                #: qualname construction of the module index.
                self.qual_stack: list[str] = []
                self.class_stack: list[str] = []
                self.func_stack: list[str] = []

            def _caller(self) -> FunctionId:
                qual = self.func_stack[-1] if self.func_stack else MODULE_BODY
                return f"{info.name}:{qual}"

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                self.qual_stack.append(node.name)
                self.class_stack.append(node.name)
                self.generic_visit(node)
                self.class_stack.pop()
                self.qual_stack.pop()

            def _visit_func(
                self, node: ast.FunctionDef | ast.AsyncFunctionDef,
            ) -> None:
                self.qual_stack.append(node.name)
                self.func_stack.append(".".join(self.qual_stack))
                self.generic_visit(node)
                self.func_stack.pop()
                self.qual_stack.pop()

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._visit_func(node)

            def visit_AsyncFunctionDef(
                self, node: ast.AsyncFunctionDef,
            ) -> None:
                self._visit_func(node)

            def visit_Call(self, node: ast.Call) -> None:
                callee = graph.resolve_call(
                    info.name, self.class_stack[-1] if self.class_stack
                    else None, node)
                if callee is not None:
                    graph.calls.setdefault(self._caller(), []).append(
                        CallSite(caller=self._caller(), callee=callee,
                                 line=node.lineno))
                self.generic_visit(node)

        Visitor().visit(info.tree)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _constructor(self, cls: ClassInfo) -> str:
        init = cls.methods.get("__init__")
        if init is not None:
            return f"{cls.module}:{init.qualname}"
        return cls.class_id

    def resolve_name(self, module: str, name: str) -> str | None:
        """A bare name in ``module`` scope -> project id or dotted external."""
        symbols = self.symbols.get(module)
        if symbols is None:
            return None
        if name in symbols.functions:
            return f"{module}:{name}"
        if name in symbols.classes:
            return self._constructor(symbols.classes[name])
        if name in symbols.object_aliases:
            source, attr = symbols.object_aliases[name]
            return self._resolve_imported(source, attr)
        if name in symbols.module_aliases:
            return None
        return name

    def _resolve_imported(self, source: str, attr: str) -> str | None:
        as_module = self.index.get(f"{source}.{attr}")
        if as_module is not None:
            return None
        src_symbols = self.symbols.get(source)
        if src_symbols is not None:
            if attr in src_symbols.functions:
                return f"{source}:{attr}"
            if attr in src_symbols.classes:
                return self._constructor(src_symbols.classes[attr])
            if attr in src_symbols.object_aliases:
                inner_source, inner_attr = src_symbols.object_aliases[attr]
                return self._resolve_imported(inner_source, inner_attr)
            return None
        return f"{source}.{attr}"

    def resolve_call(
        self, module: str, enclosing_class: str | None, node: ast.Call,
    ) -> str | None:
        """Resolve one call node; ``None`` when the target is unknowable."""
        func = node.func
        if isinstance(func, ast.Name):
            return self.resolve_name(module, func.id)
        parts = _attribute_chain(func)
        if parts is None:
            return None
        symbols = self.symbols.get(module)
        if symbols is None:
            return None
        if parts[0] == "self" and enclosing_class is not None:
            cls = symbols.classes.get(enclosing_class)
            if cls is None:
                return None
            if len(parts) == 2:
                method = cls.methods.get(parts[1])
                if method is not None:
                    return f"{module}:{method.qualname}"
                return None
            if len(parts) == 3:
                target = self.attribute_types.get(
                    f"{cls.class_id}.{parts[1]}")
                if target is not None:
                    target_cls = self.classes.get(target)
                    if target_cls is not None:
                        method = target_cls.methods.get(parts[2])
                        if method is not None:
                            return f"{target_cls.module}:{method.qualname}"
                return None
            return None
        if parts[0] in symbols.module_aliases:
            dotted = ".".join(
                [symbols.module_aliases[parts[0]], *parts[1:-1]])
            target_info = self.index.get(dotted)
            if target_info is not None:
                target_symbols = self.symbols[target_info.name]
                if parts[-1] in target_symbols.functions:
                    return f"{dotted}:{parts[-1]}"
                if parts[-1] in target_symbols.classes:
                    return self._constructor(
                        target_symbols.classes[parts[-1]])
                return None
            return f"{dotted}.{parts[-1]}"
        if parts[0] in symbols.object_aliases and len(parts) == 2:
            source, attr = symbols.object_aliases[parts[0]]
            if self.index.get(f"{source}.{attr}") is not None:
                return self._resolve_imported(f"{source}.{attr}", parts[1])
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def callees(self, fid: FunctionId) -> list[CallSite]:
        return self.calls.get(fid, [])

    def reachable(self, roots: Iterable[FunctionId]) -> set[str]:
        """Every callee name reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            fid = stack.pop()
            if fid in seen:
                continue
            seen.add(fid)
            for site in self.calls.get(fid, []):
                if site.callee not in seen:
                    stack.append(site.callee)
        return seen

    def function(self, fid: FunctionId) -> FunctionInfo | None:
        return self.functions.get(fid)

    def module_of(self, fid: FunctionId) -> ModuleInfo | None:
        return self.index.get(fid.split(":", 1)[0])

    def type_alias(self, module: str, name: str) -> ast.expr | None:
        symbols = self.symbols.get(module)
        if symbols is None:
            return None
        return symbols.type_aliases.get(name)

    def resolve_class(
        self, module: str, name: str, _depth: int = 0,
    ) -> ClassInfo | None:
        """A bare name in ``module`` scope -> its ClassInfo, through
        ``from m import Cls`` chains (bounded against alias cycles)."""
        if _depth > 8:
            return None
        symbols = self.symbols.get(module)
        if symbols is None:
            return None
        if name in symbols.classes:
            return symbols.classes[name]
        if name in symbols.object_aliases:
            source, attr = symbols.object_aliases[name]
            return self.resolve_class(source, attr, _depth + 1)
        return None


def build_callgraph(
    index: ModuleIndex,
    attribute_types: tuple[tuple[str, str], ...] = (),
) -> CallGraph:
    """Build the call graph for ``index`` (one pass; build once per lint)."""
    return CallGraph(index, attribute_types)


def imported_modules(info: ModuleInfo) -> set[str]:
    """Dotted names of every module ``info`` imports, at any nesting."""
    out: set[str] = set()
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _package_of(info, node.level)
                source = f"{base}.{node.module}" if node.module else base
            else:
                source = node.module or ""
            out.add(source)
            for alias in node.names:
                out.add(f"{source}.{alias.name}")
    return out


def import_closure(index: ModuleIndex, roots: Iterable[str]) -> set[str]:
    """Project modules transitively imported from ``roots`` (inclusive)."""
    seen: set[str] = set()
    stack = [name for name in roots if index.get(name) is not None]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        info = index.get(name)
        if info is None:
            continue
        for imported in imported_modules(info):
            if imported not in seen and index.get(imported) is not None:
                stack.append(imported)
    return seen


__all__ = [
    "MODULE_BODY",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionId",
    "ModuleSymbols",
    "build_callgraph",
    "import_closure",
    "imported_modules",
]
