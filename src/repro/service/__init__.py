"""Warm-pool enumeration service: reuse every prologue across requests.

The one-shot API (``maximal_cliques(..., n_jobs=N)``) pays the full
prologue on every call — degeneracy decomposition, cost model, chunk
packing, bitmask view construction, worker-pool spin-up.  This package
amortises all of it for long-running callers:

* :class:`CliqueService` — owns a warm
  :class:`repro.parallel.pool.WorkerPool` and a
  :class:`GraphRegistry` of per-graph cached artifacts; repeated
  requests against a registered graph skip every prologue step
  (``stats()`` proves it: ``decompose_calls``/``pool_spinups``/
  ``graph_ships`` stay flat while ``requests`` grows).
* :mod:`repro.service.protocol` + :mod:`repro.service.server` — a
  JSON-lines request protocol over stdio or TCP
  (``repro-mce serve``).
* :class:`ServiceClient` — the matching synchronous TCP client.

This seam is where later multi-machine sharding plugs in: a shard is one
service instance owning a slice of the chunk space.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.core import CliqueService
from repro.service.protocol import (
    PROTOCOL_VERSION,
    handle_line,
    handle_request,
)
from repro.service.registry import (
    GraphEntry,
    GraphRegistry,
    graph_fingerprint,
)
from repro.service.server import serve_metrics_http, serve_stdio, serve_tcp

__all__ = [
    "CliqueService",
    "GraphEntry",
    "GraphRegistry",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceError",
    "graph_fingerprint",
    "handle_line",
    "handle_request",
    "serve_metrics_http",
    "serve_stdio",
    "serve_tcp",
]
